package udptrans

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	rekey "repro"
	"repro/internal/obs"
	"repro/internal/packet"
)

// TestMetricsMatchStats drives a full rekey over UDP loopback with a
// live registry and asserts the counters served over /metrics agree
// exactly with the Stats Distribute returns: the registry observes the
// same sends and NACK accepts the transport counts.
func TestMetricsMatchStats(t *testing.T) {
	reg := obs.New()
	tun := rekey.DefaultTuning()
	tun.InitialRho = 1.5 // half a block of proactive parity each round
	k := tun.K
	// Deterministic loss: members 4, 8, ... drop every ENC packet and
	// recover from parity alone (NACK -> reactive parity -> FEC).
	// Member 2 additionally drops all parity except the first shard of
	// each block, so it can NACK but never FEC-complete: it must be
	// finished by the unicast USR phase.
	drop := func(i int) func([]byte) bool {
		if i == 2 {
			return func(pkt []byte) bool {
				typ, err := packet.Detect(pkt)
				if err != nil || typ == packet.TypeUSR {
					return false
				}
				if typ == packet.TypePARITY {
					p, err := packet.ParsePARITY(append([]byte(nil), pkt...))
					return err == nil && int(p.Seq) != k
				}
				return true // all ENC
			}
		}
		if i%4 != 0 || i == 0 {
			return nil
		}
		return func(pkt []byte) bool {
			typ, err := packet.Detect(pkt)
			return err == nil && typ == packet.TypeENC
		}
	}
	ks, srv, clients := group(t, 36, drop, rekey.WithTuning(tun), rekey.WithKeySeed(11), rekey.WithObs(reg))

	// Counters accumulate across runs; measure the churn rekey as a diff.
	before := reg.Snapshot().Counters

	for _, id := range []rekey.MemberID{1, 3, 7, 9, 11, 13, 15, 17} {
		if err := ks.QueueLeave(id); err != nil {
			t.Fatal(err)
		}
		clients[id].Close()
		srv.RemoveMemberAddr(id)
		delete(clients, id)
	}
	rm, err := ks.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.Distribute(context.Background(), rm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitKeyed(t, ks, clients, 5*time.Second)

	// Fetch the counters the way an operator would: over /metrics.
	rec := httptest.NewRecorder()
	reg.ServeMux().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	var snap struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics json: %v", err)
	}

	diff := func(name string) int64 { return snap.Counters[name] - before[name] }
	if got := diff("enc_sent"); got != int64(st.EncSent) {
		t.Errorf("enc_sent = %d, Stats.EncSent = %d", got, st.EncSent)
	}
	if got := diff("parity_sent"); got != int64(st.ParitySent) {
		t.Errorf("parity_sent = %d, Stats.ParitySent = %d", got, st.ParitySent)
	}
	if got := diff("usr_sent"); got != int64(st.UsrSent) {
		t.Errorf("usr_sent = %d, Stats.UsrSent = %d", got, st.UsrSent)
	}
	var wantNACKs int
	for _, n := range st.NACKsPerRound {
		wantNACKs += n
	}
	if got := diff("nack_recv"); got != int64(wantNACKs) {
		t.Errorf("nack_recv = %d, sum(Stats.NACKsPerRound) = %d", got, wantNACKs)
	}
	if got := diff("unicast_waves"); got != int64(st.UnicastWaves) {
		t.Errorf("unicast_waves = %d, Stats.UnicastWaves = %d", got, st.UnicastWaves)
	}
	if got := snap.Gauges["rho"]; got != tun.InitialRho {
		t.Errorf("rho gauge = %v, want %v", got, tun.InitialRho)
	}
	// The loss regime guarantees the NACK path actually ran.
	if wantNACKs == 0 {
		t.Error("test exercised no NACKs; loss regime too mild")
	}

	// The trace must carry the run's round structure.
	var rounds, nackEvents int
	for _, ev := range reg.Events() {
		switch ev.Kind {
		case obs.EvRoundStart:
			if ev.MsgID == rm.MsgID {
				rounds++
			}
		case obs.EvNACKReceived:
			if ev.MsgID == rm.MsgID {
				nackEvents++
			}
		}
	}
	if rounds != st.Rounds {
		t.Errorf("RoundStart events = %d, Stats.Rounds = %d", rounds, st.Rounds)
	}
	if nackEvents != wantNACKs {
		t.Errorf("NACKReceived events = %d, want %d", nackEvents, wantNACKs)
	}
}

// TestDistributeContextCancel: a cancelled context aborts the
// NACK-collection wait instead of blocking out the full round timer.
func TestDistributeContextCancel(t *testing.T) {
	tun := rekey.DefaultTuning()
	tun.InitialRho = 1.0
	ks, err := rekey.NewServer(rekey.WithTuning(tun), rekey.WithKeySeed(21))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ks, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 8; i++ {
		if err := ks.QueueJoin(rekey.MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := ks.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	// No clients listen, so every round would wait out RoundDur.
	opts := DefaultOptions()
	opts.RoundDur = 10 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := srv.Distribute(ctx, rm, opts)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Distribute returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Distribute did not return after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestClientRunContextCancel: cancelling the context stops a client's
// receive loop with ctx.Err(); Close still returns nil.
func TestClientRunContextCancel(t *testing.T) {
	ks, err := rekey.NewServer(rekey.WithKeySeed(22))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ks, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := ks.QueueJoin(1); err != nil {
		t.Fatal(err)
	}
	if _, err := ks.Rekey(); err != nil {
		t.Fatal(err)
	}
	cred, ok := ks.Credentials(1)
	if !ok {
		t.Fatal("no credentials")
	}
	c, err := NewClient(cred, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}
