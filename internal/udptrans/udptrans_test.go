package udptrans

import (
	"context"
	"math/rand/v2"
	"testing"
	"time"

	rekey "repro"
	"repro/internal/packet"
)

// group spins up a key server, UDP transport server, and n clients on
// loopback, bootstrapped through the first rekey message.
func group(t *testing.T, n int, drop func(i int) func([]byte) bool, opts ...rekey.Option) (*rekey.Server, *Server, map[rekey.MemberID]*Client) {
	t.Helper()
	ks, err := rekey.NewServer(opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ks, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	for i := 0; i < n; i++ {
		if err := ks.QueueJoin(rekey.MemberID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := ks.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	clients := make(map[rekey.MemberID]*Client, n)
	for i := 0; i < n; i++ {
		cred, ok := ks.Credentials(rekey.MemberID(i))
		if !ok {
			t.Fatalf("no credentials for %d", i)
		}
		c, err := NewClient(cred, srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if drop != nil {
			c.Drop = drop(i)
		}
		clients[rekey.MemberID(i)] = c
		srv.SetMemberAddr(rekey.MemberID(i), c.Addr())
		go c.Run(context.Background()) //nolint:errcheck
		t.Cleanup(func() { c.Close() })
	}
	if _, err := srv.Distribute(context.Background(), rm, DefaultOptions()); err != nil {
		t.Fatalf("bootstrap distribute: %v", err)
	}
	waitKeyed(t, ks, clients, 3*time.Second)
	return ks, srv, clients
}

func waitKeyed(t *testing.T, ks *rekey.Server, clients map[rekey.MemberID]*Client, timeout time.Duration) {
	t.Helper()
	want := ks.GroupKey()
	deadline := time.Now().Add(timeout)
	for {
		all := true
		for _, c := range clients {
			gk, ok := c.Member.GroupKey()
			if !ok || gk != want {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			for id, c := range clients {
				gk, ok := c.Member.GroupKey()
				if !ok || gk != want {
					t.Errorf("member %d not keyed (ok=%v)", id, ok)
				}
			}
			t.Fatal("timeout waiting for members to key")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLoopbackLossless(t *testing.T) {
	ks, srv, clients := group(t, 20, nil, rekey.WithKeySeed(1))
	// Churn: 3 leave, 2 join.
	for _, id := range []rekey.MemberID{2, 5, 11} {
		if err := ks.QueueLeave(id); err != nil {
			t.Fatal(err)
		}
		clients[id].Close()
		srv.RemoveMemberAddr(id)
		delete(clients, id)
	}
	for _, id := range []rekey.MemberID{100, 101} {
		if err := ks.QueueJoin(id); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := ks.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []rekey.MemberID{100, 101} {
		cred, ok := ks.Credentials(id)
		if !ok {
			t.Fatalf("no credentials for %d", id)
		}
		c, err := NewClient(cred, srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients[id] = c
		srv.SetMemberAddr(id, c.Addr())
		go c.Run(context.Background()) //nolint:errcheck
		t.Cleanup(func() { c.Close() })
	}
	st, err := srv.Distribute(context.Background(), rm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.EncSent == 0 {
		t.Fatal("no ENC packets sent")
	}
	waitKeyed(t, ks, clients, 3*time.Second)
}

func TestLoopbackWithLoss(t *testing.T) {
	// A quarter of the members drop 30% of multicast packets: recovery
	// must proceed through NACK-driven parity and, if needed, unicast.
	drop := func(i int) func([]byte) bool {
		if i%4 != 0 {
			return nil
		}
		rng := rand.New(rand.NewPCG(uint64(i), 77))
		return func(pkt []byte) bool {
			typ, err := packet.Detect(pkt)
			if err != nil {
				return false
			}
			// Never drop USR: the escalating-duplicate unicast stage
			// bounds retries; dropping all duplicates forever would
			// just slow the test.
			if typ == packet.TypeUSR {
				return false
			}
			return rng.Float64() < 0.3
		}
	}
	// rho = 1: no proactive parity, so recovery is forced through the
	// NACK-driven reactive path.
	tun := rekey.DefaultTuning()
	tun.InitialRho = 1.0
	ks, srv, clients := group(t, 24, drop, rekey.WithTuning(tun), rekey.WithKeySeed(2))

	for i := 0; i < 6; i++ {
		id := rekey.MemberID(i*4 + 1)
		if err := ks.QueueLeave(id); err != nil {
			t.Fatal(err)
		}
		clients[id].Close()
		srv.RemoveMemberAddr(id)
		delete(clients, id)
	}
	rm, err := ks.Rekey()
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.Distribute(context.Background(), rm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitKeyed(t, ks, clients, 5*time.Second)
	if len(st.NACKsPerRound) == 0 {
		t.Fatal("no NACK rounds recorded")
	}
}

func TestDistributeEmptyMessage(t *testing.T) {
	ks, err := rekey.NewServer(rekey.WithKeySeed(3))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ks, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	st, err := srv.Distribute(context.Background(), &rekey.RekeyMessage{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.EncSent != 0 {
		t.Fatal("sent packets for an empty message")
	}
}
