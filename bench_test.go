// Benchmarks regenerating the paper's evaluation: one sub-benchmark per
// figure (BenchmarkFigures), plus micro-benchmarks for the key server's
// unit costs that feed the capacity analysis. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks execute the registered experiment at quick scale;
// use cmd/rekeybench for paper-scale sweeps and the printed tables.
package rekey_test

import (
	"math/rand/v2"
	"testing"

	rekey "repro"
	"repro/internal/experiments"
	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/workload"
)

// BenchmarkFigures runs every registered experiment (each regenerating
// one paper figure or analysis table) at reduced scale.
func BenchmarkFigures(b *testing.B) {
	for _, e := range experiments.All() {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := experiments.Options{Quick: true, Messages: 4, Seed: uint64(i + 1)}
				if _, err := e.Run(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMarkingAlgorithm measures one batch (J=0, L=N/4) on a
// 4096-user tree: the key management component's per-interval work.
func BenchmarkMarkingAlgorithm(b *testing.B) {
	gen, err := workload.NewGenerator(4096, 4, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gen.Batch(0, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRekeyMessageMaterialize measures the full server pipeline
// with real cryptography: batch -> UKA -> wire packets, for a 1024-user
// group with 25% churn.
func BenchmarkRekeyMessageMaterialize(b *testing.B) {
	srv, err := rekey.NewServer(rekey.Config{KeySeed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		if err := srv.QueueJoin(rekey.MemberID(i)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := srv.Rekey(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	next := rekey.MemberID(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Steady-state churn: 64 members swap out.
		var present []rekey.MemberID
		for m := rekey.MemberID(0); m < next; m++ {
			if _, ok := srv.Credentials(m); ok {
				present = append(present, m)
			}
		}
		perm := rng.Perm(len(present))
		for j := 0; j < 64; j++ {
			if err := srv.QueueLeave(present[perm[j]]); err != nil {
				b.Fatal(err)
			}
			if err := srv.QueueJoin(next); err != nil {
				b.Fatal(err)
			}
			next++
		}
		b.StartTimer()
		if _, err := srv.Rekey(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemberIngest measures client-side processing of one specific
// ENC packet (parse + unwrap path keys), the per-user per-interval cost.
func BenchmarkMemberIngest(b *testing.B) {
	srv, err := rekey.NewServer(rekey.Config{KeySeed: 3})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if err := srv.QueueJoin(rekey.MemberID(i)); err != nil {
			b.Fatal(err)
		}
	}
	rm, err := srv.Rekey()
	if err != nil {
		b.Fatal(err)
	}
	cred, _ := srv.Credentials(7)
	pkt, ok := rm.PacketFor(cred.NodeID)
	if !ok {
		b.Fatal("no packet")
	}
	raw, err := pkt.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := rekey.NewMember(cred)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Ingest(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem42 measures the client-side ID rederivation.
func BenchmarkTheorem42(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, ok := keytree.NewID(4, 5461, 1365); !ok {
			b.Fatal("no ID")
		}
	}
}

// BenchmarkGroupKeyWrap isolates the {k'}_k operation (per-encryption
// server cost, also the unit of the capacity analysis).
func BenchmarkGroupKeyWrap(b *testing.B) {
	g := keys.NewDeterministicGenerator(4)
	outer, inner := g.MustNewKey(), g.MustNewKey()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		keys.Wrap(outer, inner)
	}
}
