// Benchmarks regenerating the paper's evaluation: one sub-benchmark per
// figure (BenchmarkFigures), plus micro-benchmarks for the key server's
// unit costs that feed the capacity analysis. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks execute the registered experiment at quick scale;
// use cmd/rekeybench for paper-scale sweeps and the printed tables.
package rekey_test

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"

	rekey "repro"
	"repro/internal/experiments"
	"repro/internal/fec"
	"repro/internal/gf256"
	"repro/internal/keys"
	"repro/internal/keytree"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/protocol"
	"repro/internal/workload"
)

// BenchmarkFigures runs every registered experiment (each regenerating
// one paper figure or analysis table) at reduced scale.
func BenchmarkFigures(b *testing.B) {
	for _, e := range experiments.All() {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := experiments.Options{Quick: true, Messages: 4, Seed: uint64(i + 1)}
				if _, err := e.Run(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMarkingAlgorithm measures one batch (J=0, L=N/4) on a
// 4096-user tree: the key management component's per-interval work.
func BenchmarkMarkingAlgorithm(b *testing.B) {
	gen, err := workload.NewGenerator(4096, 4, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gen.Batch(0, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRekeyMessageMaterialize measures the full server pipeline
// with real cryptography: batch -> UKA -> wire packets, for a 1024-user
// group with 25% churn.
func BenchmarkRekeyMessageMaterialize(b *testing.B) {
	srv, err := rekey.NewServer(rekey.WithKeySeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		if err := srv.QueueJoin(rekey.MemberID(i)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := srv.Rekey(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	next := rekey.MemberID(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Steady-state churn: 64 members swap out.
		var present []rekey.MemberID
		for m := rekey.MemberID(0); m < next; m++ {
			if _, ok := srv.Credentials(m); ok {
				present = append(present, m)
			}
		}
		perm := rng.Perm(len(present))
		for j := 0; j < 64; j++ {
			if err := srv.QueueLeave(present[perm[j]]); err != nil {
				b.Fatal(err)
			}
			if err := srv.QueueJoin(next); err != nil {
				b.Fatal(err)
			}
			next++
		}
		b.StartTimer()
		if _, err := srv.Rekey(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemberIngest measures client-side processing of one specific
// ENC packet (parse + unwrap path keys), the per-user per-interval cost.
func BenchmarkMemberIngest(b *testing.B) {
	srv, err := rekey.NewServer(rekey.WithKeySeed(3))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if err := srv.QueueJoin(rekey.MemberID(i)); err != nil {
			b.Fatal(err)
		}
	}
	rm, err := srv.Rekey()
	if err != nil {
		b.Fatal(err)
	}
	cred, _ := srv.Credentials(7)
	pkt, ok := rm.PacketFor(cred.NodeID)
	if !ok {
		b.Fatal("no packet")
	}
	raw, err := pkt.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := rekey.NewMember(cred)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Ingest(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPacketSizes are the payload lengths the FEC kernel suite
// sweeps: a small shard, the paper's 1027-byte wire packet, and a
// large block.
var benchPacketSizes = []int{64, 1027, 8192}

// BenchmarkMulAddSlice measures the GF(2^8) fused multiply-accumulate
// -- the inner loop of Reed-Solomon encoding -- for the dispatched
// kernel (SSSE3 on amd64, nibble tables elsewhere) and the retained
// scalar reference kernel. The ratio at 1027 bytes is the headline
// number tracked in BENCH_fec.json.
func BenchmarkMulAddSlice(b *testing.B) {
	for _, n := range benchPacketSizes {
		src, dst := make([]byte, n), make([]byte, n)
		for i := range src {
			src[i] = byte(i*31 + 7)
		}
		b.Run(fmt.Sprintf("kernel/%dB", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				gf256.MulAddSlice(dst, src, 0x57)
			}
		})
		b.Run(fmt.Sprintf("ref/%dB", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				gf256.RefMulAddSlice(dst, src, 0x57)
			}
		})
	}
}

// BenchmarkFECEncode measures one-block parity generation with the
// one-pass encoder across block sizes and packet lengths; bytes/op is
// the data read per encode (k*plen), the paper's linear-in-k unit.
func BenchmarkFECEncode(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, k := range []int{1, 5, 10, 20, 50} {
		for _, plen := range benchPacketSizes {
			b.Run(fmt.Sprintf("k%d/%dB", k, plen), func(b *testing.B) {
				c, err := fec.NewCoder(k, k)
				if err != nil {
					b.Fatal(err)
				}
				data := make([][]byte, k)
				for i := range data {
					data[i] = make([]byte, plen)
					for j := range data[i] {
						data[i][j] = byte(rng.Uint32())
					}
				}
				b.SetBytes(int64(k * plen))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.EncodeAll(data, 0, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFECEncodeParallel measures multi-block parity generation
// through the bounded worker pool at several worker counts (the
// per-rekey-message fan-out). On a multi-core host throughput should
// scale near-linearly to 4 workers; the recorded baseline notes the
// host's core count.
func BenchmarkFECEncodeParallel(b *testing.B) {
	const blocks, k, plen = 32, 10, 1027
	coder, err := fec.NewCoder(k, fec.MaxShards-k)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	reqs := make([]protocol.BlockParity, blocks)
	for bi := range reqs {
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, plen)
			for j := range data[i] {
				data[i][j] = byte(rng.Uint32())
			}
		}
		reqs[bi] = protocol.BlockParity{Data: data, First: 0, N: k / 2}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.SetBytes(int64(blocks * k * plen))
			for i := 0; i < b.N; i++ {
				if _, err := protocol.EncodeBlocks(context.Background(), coder, reqs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead prices the observability layer on the transport
// hot path -- the ENC marshal fan-out plus NACK parse/aggregate loop
// that udptrans runs per round -- in three configurations:
//
//	baseline  the loop with no instrumentation calls at all
//	nilreg    instrumentation calls on a nil *obs.Registry (the no-op
//	          path every unobserved run takes; must cost < 2% over
//	          baseline, the bound recorded in the bench baseline JSON)
//	live      a real registry absorbing counters and trace events
func BenchmarkObsOverhead(b *testing.B) {
	srv, err := rekey.NewServer(rekey.WithKeySeed(5))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if err := srv.QueueJoin(rekey.MemberID(i)); err != nil {
			b.Fatal(err)
		}
	}
	rm, err := srv.Rekey()
	if err != nil {
		b.Fatal(err)
	}
	nacks := make([][]byte, 64)
	for i := range nacks {
		raw, err := (&packet.NACK{MsgID: rm.MsgID, UserID: uint16(i),
			Requests: []packet.BlockRequest{{Count: 3, BlockID: 0}}}).Marshal()
		if err != nil {
			b.Fatal(err)
		}
		nacks[i] = raw
	}
	var sink int
	run := func(b *testing.B, reg *obs.Registry, instrumented bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for pi := range rm.ENC {
				raw, err := rm.ENC[pi].Marshal()
				if err != nil {
					b.Fatal(err)
				}
				sink += len(raw)
				if instrumented {
					reg.Inc(obs.CEncSent)
				}
			}
			amax := 0
			for _, raw := range nacks {
				nk, err := packet.ParseNACK(raw)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range nk.Requests {
					if int(r.Count) > amax {
						amax = int(r.Count)
					}
				}
				if instrumented {
					reg.Inc(obs.CNACKRecv)
					reg.Emit(obs.Event{Kind: obs.EvNACKReceived, MsgID: nk.MsgID,
						User: int(nk.UserID), Value: float64(amax)})
				}
			}
			sink += amax
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, nil, false) })
	b.Run("nilreg", func(b *testing.B) { run(b, nil, true) })
	b.Run("live", func(b *testing.B) { run(b, obs.New(), true) })
	if sink == 42 {
		b.Log("unreachable; defeats dead-code elimination")
	}
}

// benchTrees caches populated key trees per size so the parallel and
// sequential ProcessBatch sub-benchmarks share one (deterministic)
// build instead of paying the million-member population twice.
var benchTrees = map[int]*keytree.Tree{}

func benchTree(b *testing.B, n int) *keytree.Tree {
	b.Helper()
	if tr, ok := benchTrees[n]; ok {
		return tr
	}
	tr := keytree.New(4, keys.NewDeterministicGenerator(uint64(n)))
	joins := make([]keytree.Member, n)
	for i := range joins {
		joins[i] = keytree.Member(i)
	}
	if _, err := tr.ProcessBatch(joins, nil); err != nil {
		b.Fatal(err)
	}
	benchTrees[n] = tr
	return tr
}

// BenchmarkProcessBatch measures one leave-heavy batch (J=0, L=N/4) on
// trees of 4096 and 2^20 members, for the parallel pipeline and the
// retained sequential reference. This is the server-capacity unit of
// DESIGN.md's Section 8 analysis at the paper's largest N; the
// acceptance target is sub-second at N=2^20 on a multi-core host with
// near-linear -cpu 1 -> 4 scaling, and >= 5x fewer allocations than
// the sequential reference.
func BenchmarkProcessBatch(b *testing.B) {
	for _, n := range []int{4096, 1 << 20} {
		for _, seq := range []bool{false, true} {
			name := fmt.Sprintf("N=%d,J=0,L=N÷4", n)
			if seq {
				name += "/seq"
			}
			b.Run(name, func(b *testing.B) {
				base := benchTree(b, n)
				rng := rand.New(rand.NewPCG(uint64(n), 9))
				perm := rng.Perm(n)[:n/4]
				leaves := make([]keytree.Member, len(perm))
				for i, p := range perm {
					leaves[i] = keytree.Member(p)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					tr := base.Clone()
					b.StartTimer()
					var err error
					if seq {
						_, err = tr.ProcessBatchSeq(nil, leaves)
					} else {
						_, err = tr.ProcessBatch(nil, leaves)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFECDecode measures block reconstruction at the paper's
// packet size for the best case (1 lost data packet) and the heavy
// case (k/2 lost), for the missing-shard-only decoder and the
// full-inverse reference. The 1-loss ratio is the receiver-side
// headline tracked in BENCH_fec.json.
func BenchmarkFECDecode(b *testing.B) {
	const k, plen = 10, 1027
	c, err := fec.NewCoder(k, k)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, plen)
		for j := range data[i] {
			data[i][j] = byte(rng.Uint32())
		}
	}
	parity, err := c.EncodeAll(data, 0, k)
	if err != nil {
		b.Fatal(err)
	}
	shardsWithLoss := func(nLoss int) []fec.Shard {
		var shards []fec.Shard
		for j := nLoss; j < k; j++ {
			shards = append(shards, fec.Shard{Index: j, Data: data[j]})
		}
		for i := 0; i < nLoss; i++ {
			shards = append(shards, fec.Shard{Index: k + i, Data: parity[i]})
		}
		return shards
	}
	for _, nLoss := range []int{1, k / 2} {
		shards := shardsWithLoss(nLoss)
		out := make([][]byte, k)
		b.Run(fmt.Sprintf("loss=%d", nLoss), func(b *testing.B) {
			b.SetBytes(int64(k * plen))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.DecodeInto(out, shards); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("loss=%d/ref", nLoss), func(b *testing.B) {
			b.SetBytes(int64(k * plen))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.RefDecode(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKeysWrap compares the three ways to produce one {k'}_k
// encryption: a cached context with a fixed outer key (the DRBG/HMAC
// state amortised away), a cached context re-keyed per call (the batch
// pipeline's actual pattern: every tree edge has a distinct child
// key), and the one-shot keys.Wrap that rebuilds cipher and MAC per
// call.
func BenchmarkKeysWrap(b *testing.B) {
	g := keys.NewDeterministicGenerator(4)
	outer, inner := g.MustNewKey(), g.MustNewKey()
	var out [keys.WrappedSize]byte
	b.Run("context", func(b *testing.B) {
		ctx := keys.NewWrapContext(outer)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx.WrapInto(&out, inner)
		}
	})
	b.Run("context-rekey", func(b *testing.B) {
		ctx := keys.NewWrapContext(outer)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx.SetKey(outer)
			ctx.WrapInto(&out, inner)
		}
	})
	b.Run("no-context", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			keys.Wrap(outer, inner)
		}
	})
}

// BenchmarkTheorem42 measures the client-side ID rederivation.
func BenchmarkTheorem42(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, ok := keytree.NewID(4, 5461, 1365); !ok {
			b.Fatal("no ID")
		}
	}
}

// BenchmarkGroupKeyWrap isolates the {k'}_k operation (per-encryption
// server cost, also the unit of the capacity analysis).
func BenchmarkGroupKeyWrap(b *testing.B) {
	g := keys.NewDeterministicGenerator(4)
	outer, inner := g.MustNewKey(), g.MustNewKey()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		keys.Wrap(outer, inner)
	}
}
